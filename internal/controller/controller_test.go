package controller

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
)

// counter tallies sink deliveries thread-safely (sinks run on node
// goroutines).
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// testTopology: a deterministic word source with a hot head feeding a
// stateful counter feeding a counting sink. perPeriod tuples per period.
func testTopology(perPeriod, kgs int, col *counter) *engine.Topology {
	t := engine.NewTopology()
	t.AddSource("src", func(period int, emit engine.Emit) {
		for i := 0; i < perPeriod; i++ {
			w := fmt.Sprintf("w%03d", (i*31+period)%97)
			if i%4 == 0 {
				w = fmt.Sprintf("w%03d", i%7) // hot head
			}
			emit(&engine.Tuple{Key: w, TS: int64(period*perPeriod + i)})
		}
	})
	t.AddOperator(&engine.Operator{
		Name:      "count",
		KeyGroups: kgs,
		Proc: func(tu *engine.TupleView, st *engine.State, emit engine.Emit) {
			st.Add(tu.Key(), 1)
			emit(tu.Materialize(nil))
		},
	})
	t.AddOperator(&engine.Operator{
		Name:      "sink",
		KeyGroups: kgs / 2,
		Proc: func(tu *engine.TupleView, st *engine.State, emit engine.Emit) {
			if col != nil {
				col.add()
			}
		},
	})
	t.Connect("src", "count")
	t.Connect("count", "sink")
	return t
}

// skewedInitial stacks every key group on node 0 so the balancer has real
// work to do.
func skewedInitial(t *engine.Topology) []int {
	if err := t.Build(); err != nil {
		panic(err)
	}
	return make([]int, t.NumGroups())
}

// TestLockstepMatchesManualLoop: the controller's lockstep mode must
// reproduce, metric for metric, the hand-written adaptation loop it
// replaced (snapshot -> record -> EWMA -> budgeted plan -> apply). Flux is
// used because it is a deterministic function of the snapshot (no anytime
// solver time limits); the comparison allows the engine's 1e-14-scale
// accumulation-order jitter.
func TestLockstepMatchesManualLoop(t *testing.T) {
	const periods, warmup, budget = 8, 2, 3

	run := func() *Metrics {
		topo := testTopology(600, 12, nil)
		e, err := engine.New(topo, engine.Config{Nodes: 3}, skewedInitial(topo))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		ctrl := New(e, Options{
			Balancer:      core.AdaptBalancer(baseline.Flux{}),
			Warmup:        warmup,
			MaxMigrations: budget,
		})
		m, err := ctrl.Run(context.Background(), warmup+periods)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	manual := func() *Metrics {
		topo := testTopology(600, 12, nil)
		e, err := engine.New(topo, engine.Config{Nodes: 3}, skewedInitial(topo))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		bal := baseline.Flux{}
		m := &Metrics{}
		baseAvg, cumLat := 0.0, 0.0
		var smooth []float64
		for p := 0; p < warmup+periods; p++ {
			ps, err := e.RunPeriod()
			if err != nil {
				t.Fatal(err)
			}
			if p == 0 {
				e.CalibrateCapacity(60)
			}
			snap, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if p >= warmup {
				if baseAvg == 0 {
					if avg := snap.AverageLoad(); avg > 0 {
						baseAvg = avg
					}
				}
				m.LoadDistance = append(m.LoadDistance, snap.LoadDistance())
				m.Collocation = append(m.Collocation, snap.CollocationFactor())
				idx := 0.0
				if baseAvg > 0 {
					idx = 100 * snap.AverageLoad() / baseAvg
				}
				m.LoadIndex = append(m.LoadIndex, idx)
				m.Migrations = append(m.Migrations, float64(ps.Migrations))
				cumLat += ps.MigrationLatency
				m.CumLatencyM = append(m.CumLatencyM, cumLat/60)
			}
			snap.MaxMigrations = budget
			if smooth == nil {
				smooth = make([]float64, len(snap.Groups))
				for k := range snap.Groups {
					smooth[k] = snap.Groups[k].Load
				}
			} else {
				const alpha = 0.5
				for k := range snap.Groups {
					smooth[k] = alpha*snap.Groups[k].Load + (1-alpha)*smooth[k]
					snap.Groups[k].Load = smooth[k]
				}
			}
			plan, err := bal.Plan(snap)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.ApplyPlan(plan.GroupNode); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}

	got, want := run(), manual()
	for name, pair := range map[string][2][]float64{
		"LoadDistance": {got.LoadDistance, want.LoadDistance},
		"Collocation":  {got.Collocation, want.Collocation},
		"LoadIndex":    {got.LoadIndex, want.LoadIndex},
		"Migrations":   {got.Migrations, want.Migrations},
		"CumLatencyM":  {got.CumLatencyM, want.CumLatencyM},
	} {
		g, w := pair[0], pair[1]
		if len(g) != periods || len(w) != periods {
			t.Fatalf("%s: lengths %d/%d, want %d", name, len(g), len(w), periods)
		}
		for i := range g {
			if d := g[i] - w[i]; d > 1e-6 || d < -1e-6 {
				t.Errorf("%s[%d] = %v, manual loop got %v", name, i, g[i], w[i])
			}
		}
	}
}

// slowBalancer wraps a balancer with an artificial planning delay, modeling
// the paper-scale MILP budgets (5-60 s of CPLEX time).
type slowBalancer struct {
	inner core.Balancer
	delay time.Duration
	mu    sync.Mutex
	plans int
}

func (s *slowBalancer) Name() string { return "slow-" + s.inner.Name() }

func (s *slowBalancer) Plan(ctx context.Context, snap *core.Snapshot) (*core.Plan, error) {
	time.Sleep(s.delay)
	s.mu.Lock()
	s.plans++
	s.mu.Unlock()
	return s.inner.Plan(ctx, snap)
}

func (s *slowBalancer) planned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plans
}

// TestPipelinedPlanningOverlapsDataPath is the tentpole regression test: a
// balancer with an artificial 60 ms Plan must not add its latency to every
// period. In lockstep mode the run takes at least periods×delay; pipelined,
// planning overlaps the data flow and total wall-clock stays far below
// that.
func TestPipelinedPlanningOverlapsDataPath(t *testing.T) {
	const (
		periods = 60
		delay   = 25 * time.Millisecond
	)

	elapsed := func(pipelined bool) (time.Duration, *Metrics, *slowBalancer) {
		topo := testTopology(2000, 8, nil)
		e, err := engine.New(topo, engine.Config{Nodes: 2}, skewedInitial(topo))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		bal := &slowBalancer{
			inner: &core.MILPBalancer{TimeLimit: time.Millisecond, Seed: 1},
			delay: delay,
		}
		ctrl := New(e, Options{Balancer: bal, MaxMigrations: 2, Pipelined: pipelined})
		t0 := time.Now()
		m, err := ctrl.Run(context.Background(), periods)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(t0), m, bal
	}

	lockstep, _, _ := elapsed(false)
	pipelined, m, bal := elapsed(true)

	floor := periods * delay // what lockstep necessarily costs
	if lockstep < floor {
		t.Fatalf("lockstep run took %v, expected at least %v (the balancer plans every period)", lockstep, floor)
	}
	// The pipelined run pays for the data, not the planner: it must beat
	// both the planner-serial floor and the measured lockstep run by a wide
	// margin (the relative bound keeps the test meaningful when -race or a
	// loaded CI runner slows the data path itself).
	if pipelined >= floor {
		t.Fatalf("pipelined run took %v, want under the %v planner-serial floor", pipelined, floor)
	}
	if 2*pipelined >= lockstep {
		t.Fatalf("pipelined run took %v, want less than half the lockstep %v", pipelined, lockstep)
	}
	if m.PlansApplied < 1 {
		t.Fatal("pipelined run applied no plans")
	}
	if m.PlansApplied >= periods {
		t.Fatalf("pipelined run applied %d plans over %d periods; expected the busy planner to drop snapshots", m.PlansApplied, periods)
	}
	t.Logf("lockstep %v, pipelined %v (%d plans computed, %d applied over %d periods)",
		lockstep, pipelined, bal.planned(), m.PlansApplied, periods)
}

// TestElasticityThroughController exercises scale-out and scale-in
// mid-run: nodes are added under the controller, later marked for removal,
// drained by the balancer and terminated — without tuple loss, and without
// draining nodes ever receiving new key groups.
func TestElasticityThroughController(t *testing.T) {
	for _, mode := range []struct {
		name      string
		pipelined bool
		periods   int
	}{
		{"lockstep", false, 16},
		{"pipelined", true, 24},
	} {
		t.Run(mode.name, func(t *testing.T) {
			const perPeriod = 400
			col := &counter{}
			topo := testTopology(perPeriod, 12, col)
			if err := topo.Build(); err != nil {
				t.Fatal(err)
			}
			e, err := engine.New(topo, engine.Config{Nodes: 3}, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			// Scripted elasticity: grow by two nodes at the third adaptation,
			// mark them for removal at the sixth.
			// The first added node has double capacity: scale-out is
			// heterogeneous, and the engine must record the weight (the old
			// AddNodes path silently hardcoded weight 1 for every new node).
			script := make([]core.ScaleDecision, mode.periods)
			script[2] = core.ScaleDecision{AddNodes: 2, AddWeights: []float64{2, 1}}
			script[5] = core.ScaleDecision{MarkForRemoval: []int{3, 4}}

			var added []int
			terminated := map[int]bool{}
			var marked bool
			prevOnKilled := map[int]bool{}
			ctrl := New(e, Options{
				Balancer:      &core.MILPBalancer{TimeLimit: 5 * time.Millisecond, Seed: 2},
				Scaler:        &core.ManualScaler{Script: script},
				MaxMigrations: 6,
				Pipelined:     mode.pipelined,
				OnPeriod: func(r PeriodReport) {
					added = append(added, r.Added...)
					for _, id := range r.Terminated {
						terminated[id] = true
					}
					if r.Outcome != nil && len(r.Outcome.Scale.MarkForRemoval) > 0 {
						marked = true
						// Seed the draining set with the groups currently on
						// the marked nodes.
						prevOnKilled = groupsOn(e, 3, 4)
						return
					}
					if !marked {
						return
					}
					// Draining nodes must never gain key groups: the set of
					// groups they host only shrinks.
					now := groupsOn(e, 3, 4)
					for gid := range now {
						if !prevOnKilled[gid] {
							t.Errorf("%s: draining node gained group %d", mode.name, gid)
						}
					}
					prevOnKilled = now
				},
			})
			if _, err := ctrl.Run(context.Background(), mode.periods); err != nil {
				t.Fatal(err)
			}

			if want := []int{3, 4}; len(added) != 2 || added[0] != want[0] || added[1] != want[1] {
				t.Fatalf("added nodes %v, want %v", added, want)
			}
			if !terminated[3] || !terminated[4] {
				t.Fatalf("marked nodes not terminated by run end: %v", terminated)
			}
			if got, want := col.get(), int64(mode.periods*perPeriod); got != want {
				t.Fatalf("sink received %d tuples, want %d (tuple loss across scaling)", got, want)
			}
			// The weighted add must be visible to the planner: node 3 was
			// provisioned at weight 2, so the snapshot carries a capacity
			// vector with exactly that entry.
			snap, err := e.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Capacity == nil || snap.Capacity[3] != 2 {
				t.Fatalf("snapshot capacity = %v, want weight 2 at node 3 (weighted scale-out lost)", snap.Capacity)
			}
		})
	}
}

// groupsOn returns the key groups currently targeted at any of the ids.
func groupsOn(e *engine.Engine, ids ...int) map[int]bool {
	on := map[int]bool{}
	alloc := e.Allocation()
	for gid, n := range alloc {
		for _, id := range ids {
			if n == id {
				on[gid] = true
			}
		}
	}
	return on
}

// TestControllerNilBalancerCollectsMetrics: with no balancer the controller
// still records the metric series (e.g. the PoTC runs plan nothing).
func TestControllerNilBalancerCollectsMetrics(t *testing.T) {
	topo := testTopology(300, 8, nil)
	e, err := engine.New(topo, engine.Config{Nodes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctrl := New(e, Options{Warmup: 1})
	m, err := ctrl.Run(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.LoadDistance) != 3 || len(m.Migrations) != 3 {
		t.Fatalf("recorded %d/%d metric periods, want 3", len(m.LoadDistance), len(m.Migrations))
	}
	if m.PlansApplied != 0 {
		t.Fatalf("plans applied without a balancer: %d", m.PlansApplied)
	}
}

// TestControllerContextCancel: cancelling the context stops a continuous
// (periods <= 0) run.
func TestControllerContextCancel(t *testing.T) {
	topo := testTopology(100, 8, nil)
	e, err := engine.New(topo, engine.Config{Nodes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	ctrl := New(e, Options{
		OnPeriod: func(r PeriodReport) {
			n++
			if n == 3 {
				cancel()
			}
		},
	})
	if _, err := ctrl.Run(ctx, 0); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if n < 3 {
		t.Fatalf("observed %d periods before cancel, want >= 3", n)
	}
}
