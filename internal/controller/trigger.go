package controller

// Trigger is the reactive (sub-period) firing policy: it watches per-node
// load rates at every sub-interval boundary and decides when transient skew
// justifies an immediate hot move instead of waiting for the period
// barrier. It fires when both
//
//   - the imbalance ratio (hottest alive node over the alive mean) exceeds
//     Ratio, and
//   - some alive node's rate deviates from its own EWMA history by more
//     than Deviation relative to the mean — i.e. the skew is a recent
//     change, not a steady state the periodic planner already owns,
//
// and then stays quiet for Cooldown boundaries so one burst cannot thrash
// the allocation. On the very first observation there is no history, so the
// deviation condition is waived: skew present from the first boundary still
// fires.
//
// Trigger is not safe for concurrent use; the controller drives it from the
// engine's generation goroutine only.
type Trigger struct {
	// Ratio is the imbalance threshold max/mean (default 1.25).
	Ratio float64
	// Deviation is the minimum |rate − EWMA| / mean to call the skew
	// transient (default 0.15).
	Deviation float64
	// Alpha is the EWMA factor for the per-node rate history (default 0.4).
	Alpha float64
	// Cooldown is the number of boundaries skipped after a firing
	// (default 2).
	Cooldown int

	ewma   []float64
	seeded bool
	cool   int
	fired  int
}

func (t *Trigger) defaults() (ratio, dev, alpha float64, cooldown int) {
	ratio, dev, alpha, cooldown = t.Ratio, t.Deviation, t.Alpha, t.Cooldown
	if ratio <= 0 {
		ratio = 1.25
	}
	if dev <= 0 {
		dev = 0.15
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.4
	}
	if cooldown <= 0 {
		cooldown = 2
	}
	return
}

// Observe folds one boundary's per-node load rates (already normalized to a
// per-interval scale by the caller) into the EWMA history and reports
// whether the reactive planner should fire now. kill marks nodes excluded
// from the mean and the hot side of the ratio (draining or removed nodes
// are not the reactive path's problem). len(loads) may grow between calls
// as nodes are added.
func (t *Trigger) Observe(loads []float64, kill []bool) bool {
	ratio, dev, alpha, cooldown := t.defaults()

	first := !t.seeded
	t.seeded = true
	// Grow history for newly added nodes (seeded with the current rate).
	for len(t.ewma) < len(loads) {
		t.ewma = append(t.ewma, loads[len(t.ewma)])
	}

	mean, alive := 0.0, 0
	maxLoad, maxDev := 0.0, 0.0
	for i, l := range loads {
		if kill != nil && i < len(kill) && kill[i] {
			continue
		}
		mean += l
		alive++
		if l > maxLoad {
			maxLoad = l
		}
		if d := l - t.ewma[i]; d > maxDev {
			maxDev = d
		} else if -d > maxDev {
			maxDev = -d
		}
	}
	for i, l := range loads {
		t.ewma[i] = alpha*l + (1-alpha)*t.ewma[i]
	}
	if alive == 0 || mean == 0 {
		return false
	}
	mean /= float64(alive)

	if t.cool > 0 {
		t.cool--
		return false
	}
	if maxLoad/mean < ratio {
		return false
	}
	if !first && maxDev/mean < dev {
		return false
	}
	t.fired++
	t.cool = cooldown
	return true
}

// Rearm clears the cooldown so the next boundary may fire again; the
// controller calls it when a firing produced no applicable moves (the skew
// is still there, the planner just could not act on this snapshot).
func (t *Trigger) Rearm() { t.cool = 0 }

// Fired returns the number of times the trigger has fired.
func (t *Trigger) Fired() int { return t.fired }
