package controller

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// pingPongBalancer moves group 0 between nodes 0 and 1 every period —
// a deterministic migration source for exercising the checkpoint-assisted
// transfer path end to end.
type pingPongBalancer struct{}

func (pingPongBalancer) Name() string { return "pingpong" }

func (pingPongBalancer) Plan(_ context.Context, s *core.Snapshot) (*core.Plan, error) {
	groupNode := make([]int, len(s.Groups))
	for k, g := range s.Groups {
		groupNode[k] = g.Node
	}
	groupNode[0] = 1 - groupNode[0]
	return core.PlanFromAssignment(s, groupNode, nil), nil
}

// TestCheckpointCadenceArmsDeltaMigration: the controller owns the
// checkpoint cadence, and once a checkpoint is warm, the engine's planned
// moves ship deltas instead of full states.
func TestCheckpointCadenceArmsDeltaMigration(t *testing.T) {
	topo := testTopology(400, 8, nil)
	eng, err := engine.New(topo, engine.Config{Nodes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := New(eng, Options{
		Balancer:        pingPongBalancer{},
		CheckpointEvery: 2,
		TargetAvgLoad:   -1,
	})
	m, err := c.Run(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints != 4 {
		t.Fatalf("Checkpoints = %d, want 4 (every 2nd of 8 periods)", m.Checkpoints)
	}
	if m.CkptBytes == 0 {
		t.Fatal("checkpoints appended no bytes")
	}
	if m.PlansApplied != 8 {
		t.Fatalf("PlansApplied = %d, want 8", m.PlansApplied)
	}
	// Group 0 moved every period; once checkpointed, those moves must have
	// used the checkpoint-assisted path (pre-copy + synchronous delta).
	if m.PrecopyBytes == 0 || m.MigratedDeltaBytes == 0 {
		t.Fatalf("no checkpoint-assisted transfers: precopy=%d delta=%d", m.PrecopyBytes, m.MigratedDeltaBytes)
	}
}

// TestCheckpointCadenceInPipelinedMode: the cadence and the multi-period
// transfer scheduling live in the engine/controller boundary, so pipelined
// planning checkpoints identically.
func TestCheckpointCadenceInPipelinedMode(t *testing.T) {
	topo := testTopology(400, 8, nil)
	eng, err := engine.New(topo, engine.Config{Nodes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := New(eng, Options{
		Balancer:        pingPongBalancer{},
		CheckpointEvery: 3,
		Pipelined:       true,
		TargetAvgLoad:   -1,
	})
	m, err := c.Run(context.Background(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints != 3 {
		t.Fatalf("Checkpoints = %d, want 3 (every 3rd of 9 periods)", m.Checkpoints)
	}
	if m.PrecopyBytes == 0 || m.MigratedDeltaBytes == 0 {
		t.Fatalf("no checkpoint-assisted transfers in pipelined mode: precopy=%d delta=%d",
			m.PrecopyBytes, m.MigratedDeltaBytes)
	}
}

func subSnap(loads ...float64) *core.Snapshot {
	s := &core.Snapshot{NumNodes: 1, Groups: make([]core.GroupStat, len(loads))}
	for k, l := range loads {
		s.Groups[k] = core.GroupStat{Node: 0, Load: l}
	}
	return s
}

// TestSubEWMAFolding checks the fold math directly: a steady signal leaves
// the EWMA at its fixed point whether folded once per period or in K
// boundary steps, and a mid-period spike moves the EWMA before the period
// ends — the freshness the satellite lever is about.
func TestSubEWMAFolding(t *testing.T) {
	c := &Controller{opt: Options{SubEWMA: true, Reactive: true, SmoothAlpha: 0.5}}
	r := &run{c: c, m: &Metrics{}}
	r.smooth = []float64{10}
	r.lastSubCount = 3 // K estimate = 4 sub-intervals

	// Steady rate: cumulative loads 2.5, 5, 7.5 at the three boundaries,
	// 10 at the period end. The EWMA must stay at 10 exactly.
	for _, cum := range []float64{2.5, 5, 7.5} {
		r.foldSub(subSnap(cum))
	}
	if !r.subFolded {
		t.Fatal("boundary folds did not mark the period")
	}
	end := subSnap(10)
	r.smoothLoads(end)
	if math.Abs(r.smooth[0]-10) > 1e-9 {
		t.Fatalf("steady signal moved the EWMA: %v", r.smooth[0])
	}
	if math.Abs(end.Groups[0].Load-10) > 1e-9 {
		t.Fatalf("planner input = %v, want 10", end.Groups[0].Load)
	}
	r.rollSubEWMA()
	if r.lastSubCount != 3 || r.subCount != 0 || r.subFolded {
		t.Fatalf("roll-over state: lastSubCount=%d subCount=%d folded=%v", r.lastSubCount, r.subCount, r.subFolded)
	}

	// A spike in the first sub-interval (cumulative 10 already at boundary
	// 1 => rate 40/period) must raise the EWMA immediately, mid-period.
	before := r.smooth[0]
	r.foldSub(subSnap(10))
	if r.smooth[0] <= before {
		t.Fatalf("mid-period spike did not move the EWMA: %v -> %v", before, r.smooth[0])
	}
	// And the planner's period-end input folds only the tail, not the
	// whole period again: with period total 10 (tail 0), the EWMA must
	// decay toward the tail rate, not re-add the spike.
	afterSpike := r.smooth[0]
	end = subSnap(10)
	r.smoothLoads(end)
	if r.smooth[0] >= afterSpike {
		t.Fatalf("tail fold re-added the spike: %v -> %v", afterSpike, r.smooth[0])
	}
}

// TestSubEWMAFirstPeriodCalibrates: without a K estimate (first period) the
// boundary observations only calibrate; period-end smoothing behaves as
// before.
func TestSubEWMAFirstPeriodCalibrates(t *testing.T) {
	c := &Controller{opt: Options{SubEWMA: true, Reactive: true, SmoothAlpha: 0.5}}
	r := &run{c: c, m: &Metrics{}}
	r.foldSub(subSnap(5))
	if r.subFolded {
		t.Fatal("first-period fold must only calibrate")
	}
	end := subSnap(10)
	r.smoothLoads(end) // seeds the EWMA
	if r.smooth[0] != 10 {
		t.Fatalf("seed = %v, want 10", r.smooth[0])
	}
	r.rollSubEWMA()
	if r.lastSubCount != 1 {
		t.Fatalf("lastSubCount = %d, want 1", r.lastSubCount)
	}
}

// TestSubEWMARequiresReactive: the feed rides the reactive observer.
func TestSubEWMARequiresReactive(t *testing.T) {
	topo := testTopology(100, 8, nil)
	eng, err := engine.New(topo, engine.Config{Nodes: 2, SubPeriods: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := New(eng, Options{SubEWMA: true})
	if _, err := c.Run(context.Background(), 1); err == nil {
		t.Fatal("SubEWMA without Reactive must error")
	}
}

// TestSubEWMAEndToEnd: a reactive controller with the feed enabled runs
// clean and still plans every period.
func TestSubEWMAEndToEnd(t *testing.T) {
	topo := testTopology(600, 8, nil)
	eng, err := engine.New(topo, engine.Config{Nodes: 2, SubPeriods: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c := New(eng, Options{
		Balancer:      &core.MILPBalancer{TimeLimit: 5e6}, // 5ms
		Reactive:      true,
		SubEWMA:       true,
		SmoothAlpha:   0.5,
		TargetAvgLoad: -1,
	})
	m, err := c.Run(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlansApplied != 6 {
		t.Fatalf("PlansApplied = %d, want 6", m.PlansApplied)
	}
	for i, d := range m.LoadDistance {
		if math.IsNaN(d) || d < 0 {
			t.Fatalf("LoadDistance[%d] = %v", i, d)
		}
	}
}
