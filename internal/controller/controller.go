// Package controller implements the paper's integrative adaptation loop
// (Algorithm 1 driven over a live engine) as a reusable control plane: it
// owns statistics-snapshot building, EWMA smoothing of planner inputs,
// capacity calibration, the migration budget, balancer invocation through
// core.Framework, and horizontal scaling (AddNodes / drain / terminate).
//
// The controller runs in one of two modes. In lockstep mode the loop is the
// paper's: run a period, snapshot, plan, apply — the engine is quiescent
// while the planner (5-60 ms MILP budgets, longer at paper scale) runs. In
// pipelined mode planning is overlapped with data flow: while period N+1's
// sources and operators run, a dedicated planner goroutine works on period
// N's snapshot, and the resulting moves are staged at the following period
// boundary (the engine's staged-migration diff defers their execution to
// period N+2). A slow planner therefore adds no latency to the data path;
// if planning takes longer than a period, intermediate snapshots are
// dropped — with smoothing enabled (SmoothAlpha < 1) their loads are still
// folded into the EWMA the next planner input carries, while at
// SmoothAlpha 1 the planner simply plans on the latest raw snapshot.
//
// Two optional layers extend the loop beyond the paper. With
// CancelStalePlans, a pipelined solve whose input snapshot goes stale (a
// fresher one arrived at the next boundary) is cancelled through its
// context and its outcome discarded — a stale plan is never applied. With
// Reactive, the controller additionally reacts inside a period: the engine
// reports mid-period statistics at sub-interval boundaries, a Trigger
// (imbalance ratio + EWMA deviation, with cooldown) detects transient skew,
// and a restricted hot-move plan (core.GreedyHotMover) applies immediately
// without waiting for the period barrier.
//
// cmd/albic-run, the examples and internal/experiments all drive their
// engines through this package; it is the only implementation of the
// adaptation loop in the repository.
package controller

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// Engine is the data-plane surface the controller drives. *engine.Engine
// implements it; tests may substitute fakes.
type Engine interface {
	// Run executes periods continuously, invoking observe between periods
	// (see engine.Engine.Run).
	Run(ctx context.Context, periods int, observe func(*engine.PeriodStats) error) error
	// Snapshot converts the last period's statistics into a core.Snapshot.
	Snapshot() (*core.Snapshot, error)
	// ApplyPlan stages a target allocation for the next period boundary.
	ApplyPlan(groupNode []int) error
	// CalibrateCapacity rescales the load-percentage unit conversion.
	CalibrateCapacity(targetAvgPercent float64)
	// AddNodes provisions new worker nodes (scale-out).
	AddNodes(count int) []int
	// MarkForRemoval flags nodes for draining (scale-in).
	MarkForRemoval(ids []int)
	// TerminateNode shuts down a drained node; errors while it still
	// holds key groups.
	TerminateNode(id int) error
}

// WeightedScaleEngine is the additional data-plane surface heterogeneous
// scale-out (core.ScaleDecision.AddWeights) requires. *engine.Engine
// implements it; against an engine that does not, weighted decisions fall
// back to unit-capacity AddNodes.
type WeightedScaleEngine interface {
	// AddNodesWeighted provisions one node per entry with that capacity
	// weight (see engine.Engine.AddNodesWeighted).
	AddNodesWeighted(weights []float64) ([]int, error)
}

// SubPeriodEngine is the additional data-plane surface reactive
// (sub-period) mode requires. *engine.Engine implements it; the engine must
// also have been built with engine.Config.SubPeriods >= 2 or no boundary
// ever fires.
type SubPeriodEngine interface {
	// SetSubObserver installs the sub-period boundary hook (see
	// engine.SubObserver).
	SetSubObserver(engine.SubObserver)
}

// CheckpointEngine is the additional data-plane surface checkpoint cadence
// (Options.CheckpointEvery) requires. *engine.Engine implements it.
type CheckpointEngine interface {
	// TakeCheckpoint incrementally checkpoints every key group's state
	// between periods.
	TakeCheckpoint() engine.CheckpointStats
}

// Options configures a Controller.
type Options struct {
	// Balancer plans key-group allocations each period. nil disables
	// planning (the controller only collects statistics).
	Balancer core.Balancer
	// Scaler makes horizontal-scaling decisions (optional). Scaling is
	// integrative: the framework re-plans over the adjusted cluster.
	Scaler core.Scaler
	// Warmup is the number of initialization periods whose metrics are not
	// recorded (the paper drops them).
	Warmup int
	// TargetAvgLoad calibrates capacity after the first period so reported
	// load percentages sit in a realistic band. 0 means the default 60;
	// negative disables calibration.
	TargetAvgLoad float64
	// MaxMigrations / MaxMigrCost bound migrations per adaptation
	// (<= 0: unrestricted); Alpha converts state size to migration cost.
	MaxMigrations int
	MaxMigrCost   float64
	Alpha         float64
	// SmoothAlpha is the EWMA factor applied to per-group loads before
	// planning (the controller's SPL averaging): input = α·new + (1-α)·old.
	// 0 means the default 0.5; 1 plans on raw loads.
	SmoothAlpha float64
	// Pipelined overlaps planning with the next period's data flow instead
	// of stopping the data path while the balancer runs.
	Pipelined bool
	// CancelStalePlans makes pipelined mode cancel an in-flight solve when
	// a fresher snapshot arrives at a period boundary, instead of dropping
	// the new snapshot: the stale solve's context is cancelled, its outcome
	// is discarded unconditionally (a stale plan is never applied), and the
	// fresh snapshot is handed to the planner. Requires a context-honoring
	// Balancer to be useful; with a balancer slower than a period, no full
	// plan ever completes — pair it with Reactive so hot moves cover the
	// gap, or leave it off for paper-style planners.
	CancelStalePlans bool

	// Reactive enables sub-period reconfiguration: a Trigger watches
	// mid-period sub-snapshots at every sub-interval boundary and, when
	// transient skew appears, fires a cheap hot-move planner whose moves
	// apply immediately — without waiting for the period barrier. The
	// engine must implement SubPeriodEngine and have been built with
	// engine.Config.SubPeriods >= 2.
	Reactive bool
	// TriggerRatio / TriggerDeviation / TriggerCooldown configure the
	// reactive trigger policy (zero values take the Trigger defaults).
	TriggerRatio     float64
	TriggerDeviation float64
	TriggerCooldown  int
	// HotMoveBudget caps the key groups a single reactive firing may move
	// (default 2).
	HotMoveBudget int
	// HotMover overrides the reactive planner (default
	// core.GreedyHotMover).
	HotMover core.Balancer
	// SubEWMA feeds the sub-period observations into the periodic planner's
	// EWMA: at every sub-interval boundary the interval's load increment
	// (scaled to a full-period rate) is folded into the smoothed loads the
	// planner consumes, so the reactive trigger and the periodic planner
	// see the same mid-period signal instead of the planner learning about
	// transient skew one full period late. Requires Reactive (the
	// observations arrive through the same sub-period observer) and
	// SmoothAlpha < 1.
	SubEWMA bool

	// CheckpointEvery, when > 0, makes the controller own the checkpoint
	// cadence: every that-many periods it takes an incremental checkpoint
	// of all key-group state (engine.TakeCheckpoint). Besides fault
	// tolerance, a warm checkpoint is what arms checkpoint-assisted
	// migration — the engine pre-copies checkpoints of planned moves across
	// period boundaries (multi-period transfer scheduling happens inside
	// the engine, so lockstep and pipelined modes behave identically) and
	// the planner prices checkpointed groups at delta cost. Requires an
	// engine implementing CheckpointEngine.
	CheckpointEvery int

	// OnPeriod, when non-nil, observes every period boundary (after any
	// plan application) — for printing progress or driving external
	// monitoring. It runs on the control goroutine; keep it cheap.
	OnPeriod func(PeriodReport)
}

func (o *Options) defaults() {
	if o.TargetAvgLoad == 0 {
		o.TargetAvgLoad = 60
	}
	if o.SmoothAlpha == 0 {
		o.SmoothAlpha = 0.5
	}
	if o.HotMoveBudget <= 0 {
		o.HotMoveBudget = 2
	}
}

// PeriodReport is the per-period view handed to Options.OnPeriod.
type PeriodReport struct {
	// Period is the engine's 1-based period number.
	Period int
	// Stats is the period's merged engine statistics.
	Stats *engine.PeriodStats
	// HasSnapshot reports whether the metric fields below are valid (the
	// controller skips snapshot building during an unobserved warm-up).
	HasSnapshot bool
	// LoadDistance / Collocation / AverageLoad are the paper's metrics
	// computed from this period's snapshot.
	LoadDistance float64
	Collocation  float64
	AverageLoad  float64
	// Outcome is the adaptation outcome applied at this boundary (nil if
	// none: planner still busy, or planning disabled).
	Outcome *core.Outcome
	// PlanLatency is the balancer time spent producing Outcome.
	PlanLatency time.Duration
	// Added / Terminated list nodes provisioned / shut down at this
	// boundary.
	Added      []int
	Terminated []int
	// Checkpoint describes the incremental checkpoint taken at this
	// boundary (nil when the cadence did not fire).
	Checkpoint *engine.CheckpointStats
}

// Metrics is the recorded per-period series of one controller run (the
// series the paper's figures plot), indexed from the first post-warmup
// period.
type Metrics struct {
	LoadDistance []float64
	Collocation  []float64
	LoadIndex    []float64 // avg load relative to the first recorded period
	Migrations   []float64
	CumLatencyM  []float64 // cumulative migration latency, minutes
	// PlansApplied counts adaptation outcomes applied over the whole run
	// (in pipelined mode this is less than the period count whenever the
	// planner spans periods).
	PlansApplied int
	// PlansCancelled counts in-flight pipelined solves aborted because a
	// fresher snapshot arrived (CancelStalePlans); their outcomes were
	// discarded, never applied.
	PlansCancelled int
	// HotMoves counts the reactive sub-period migrations executed over the
	// run (also folded into each period's Migrations series).
	HotMoves int
	// Checkpoints counts the incremental checkpoints taken
	// (Options.CheckpointEvery); CkptBytes is the total volume they
	// appended to the store (full snapshots first, deltas after).
	Checkpoints int
	CkptBytes   int64
	// PrecopyBytes / MigratedDeltaBytes total the background pre-copied
	// checkpoint volume and the synchronous delta volume of checkpoint-
	// assisted migrations over the run; DeferredMoves counts period
	// boundaries a staged move waited behind its pre-copy.
	PrecopyBytes       int64
	MigratedDeltaBytes int64
	DeferredMoves      int
}

// Controller owns the adaptation loop over one engine.
type Controller struct {
	eng Engine
	opt Options
	fw  *core.Framework
}

// New builds a controller. The engine is normally freshly constructed; an
// engine with completed periods (e.g. after a bootstrap phase) is fine as
// long as calibration is disabled (TargetAvgLoad < 0) — otherwise the
// controller would re-calibrate capacity after what it believes is the
// first period.
func New(eng Engine, opt Options) *Controller {
	opt.defaults()
	c := &Controller{eng: eng, opt: opt}
	if opt.Balancer != nil {
		c.fw = &core.Framework{Balancer: opt.Balancer, Scaler: opt.Scaler}
	}
	return c
}

// plannerResult is one asynchronous planning outcome.
type plannerResult struct {
	out     *core.Outcome
	err     error
	latency time.Duration
}

// planReq is one snapshot handed to the planner goroutine, paired with the
// context that cancels its solve when the snapshot goes stale.
type planReq struct {
	ctx  context.Context
	snap *core.Snapshot
}

// run is the per-Run mutable state of the adaptation loop.
type run struct {
	c   *Controller
	ctx context.Context // the Run context (bounds every solve)

	p       int // 0-based period index within this run
	baseAvg float64
	cumLat  float64
	smooth  []float64
	m       *Metrics

	// terminated remembers shut-down nodes: the framework keeps listing an
	// empty kill-marked node every period, but it is only reported (and
	// terminated) once.
	terminated map[int]bool

	// Pipelined-planning state: req carries at most one in-flight snapshot
	// to the planner goroutine, res its outcome; cancelPlan aborts the
	// in-flight solve.
	req        chan planReq
	res        chan plannerResult
	planning   bool
	cancelPlan context.CancelFunc

	// Reactive state, touched only on the engine's generation goroutine
	// (the sub-period observer); the engine guarantees the observer never
	// overlaps the period-boundary observe hook. lastHot remembers the
	// previous firing's moves so a firing the engine rejected wholesale
	// (stale From, staged group, non-host destination) re-arms the trigger
	// instead of wasting its cooldown.
	trigger  *Trigger
	hotMover core.Balancer
	lastHot  []core.Move

	// Sub-period EWMA feed (Options.SubEWMA), written by the sub-period
	// observer and read by observe — never concurrently, by the same
	// engine guarantee as the reactive state above. subPrev holds each
	// group's cumulative partial load at the last boundary, subCount the
	// boundaries seen this period, lastSubCount the previous period's
	// count (the K estimate the per-boundary fold factor derives from).
	subPrev      []float64
	subCount     int
	lastSubCount int
	subFolded    bool
}

// Run executes the adaptation loop for the given number of periods
// (periods <= 0: until ctx is cancelled) and returns the recorded metric
// series.
func (c *Controller) Run(ctx context.Context, periods int) (*Metrics, error) {
	r := &run{c: c, ctx: ctx, m: &Metrics{}, terminated: map[int]bool{}}
	if c.opt.SubEWMA && !c.opt.Reactive {
		return r.m, fmt.Errorf("controller: SubEWMA requires Reactive (observations arrive through the sub-period observer)")
	}
	if c.opt.CheckpointEvery > 0 {
		if _, ok := c.eng.(CheckpointEngine); !ok {
			return r.m, fmt.Errorf("controller: CheckpointEvery requires an engine with checkpoint support")
		}
	}
	if c.opt.Reactive {
		se, ok := c.eng.(SubPeriodEngine)
		if !ok {
			return r.m, fmt.Errorf("controller: Reactive requires an engine with sub-period support")
		}
		r.trigger = &Trigger{
			Ratio:     c.opt.TriggerRatio,
			Deviation: c.opt.TriggerDeviation,
			Cooldown:  c.opt.TriggerCooldown,
		}
		r.hotMover = c.opt.HotMover
		if r.hotMover == nil {
			r.hotMover = &core.GreedyHotMover{TopK: c.opt.HotMoveBudget}
		}
		se.SetSubObserver(r.onSubPeriod)
		defer se.SetSubObserver(nil)
	}
	if c.opt.Pipelined && c.fw != nil {
		r.req = make(chan planReq, 1)
		r.res = make(chan plannerResult, 1)
		go func() {
			for pq := range r.req {
				t0 := time.Now()
				out, err := c.fw.Step(pq.ctx, pq.snap)
				r.res <- plannerResult{out: out, err: err, latency: time.Since(t0)}
			}
		}()
		defer func() {
			close(r.req)
			if r.planning {
				r.cancelPlan() // the run is over; abort and drain
				<-r.res
			}
		}()
	}
	if err := c.eng.Run(ctx, periods, r.observe); err != nil {
		return r.m, err
	}
	return r.m, nil
}

// onSubPeriod is the reactive path, invoked by the engine at every
// sub-interval boundary on its generation goroutine: normalize the partial
// loads, consult the trigger, and — when it fires — plan a restricted
// hot-move batch on the mid-period snapshot. The returned moves are applied
// by the engine immediately, without waiting for the period barrier.
func (r *run) onSubPeriod(snap *core.Snapshot, period, sub int) []core.Move {
	if r.c.opt.SubEWMA && r.c.opt.SmoothAlpha < 1 {
		r.foldSub(snap)
	}
	// If the previous firing's moves were all rejected by the engine (the
	// snapshot they were planned on went stale between boundaries), none of
	// them shows up in the current allocation: re-arm the trigger so the
	// cooldown is not spent on a no-op.
	if r.lastHot != nil {
		applied := false
		for _, mv := range r.lastHot {
			if mv.Group < len(snap.Groups) && snap.Groups[mv.Group].Node == mv.To {
				applied = true
				break
			}
		}
		if !applied {
			r.trigger.Rearm()
		}
		r.lastHot = nil
	}
	loads := snap.NodeLoads()
	// SubSnapshot loads accumulate from the period start; divide by the
	// boundary index so the trigger's EWMA sees comparable per-interval
	// rates at every boundary.
	for i := range loads {
		loads[i] /= float64(sub)
	}
	if !r.trigger.Observe(loads, snap.Kill) {
		return nil
	}
	snap.MaxMigrations = r.c.opt.HotMoveBudget
	plan, err := r.hotMover.Plan(r.ctx, snap)
	if err != nil || plan == nil || len(plan.Moves) == 0 {
		r.trigger.Rearm()
		return nil
	}
	r.lastHot = plan.Moves
	return plan.Moves
}

// observe is the period-boundary hook: it applies any completed
// asynchronous outcome, calibrates once after the first period, snapshots,
// records metrics, smooths planner inputs and either plans synchronously
// (lockstep) or hands the snapshot to the planner goroutine (pipelined).
func (r *run) observe(ps *engine.PeriodStats) error {
	c := r.c
	p := r.p
	r.p++
	rep := PeriodReport{Period: ps.Period, Stats: ps}

	if p == 0 && c.opt.TargetAvgLoad > 0 {
		c.eng.CalibrateCapacity(c.opt.TargetAvgLoad)
	}
	// Counted before any early return: hot moves and state-transfer volume
	// during an unobserved warm-up period still happened.
	r.m.HotMoves += ps.HotMoves
	r.m.PrecopyBytes += ps.PrecopyBytes
	r.m.MigratedDeltaBytes += ps.MigratedDeltaBytes
	r.m.DeferredMoves += ps.DeferredMoves

	// Checkpoint cadence (also active during warm-up: the cadence is
	// operational, not a metric). A warm checkpoint is what arms
	// checkpoint-assisted migration for the moves planned below.
	if c.opt.CheckpointEvery > 0 && ps.Period%c.opt.CheckpointEvery == 0 {
		cs := c.eng.(CheckpointEngine).TakeCheckpoint()
		r.m.Checkpoints++
		r.m.CkptBytes += int64(cs.NewBytes)
		rep.Checkpoint = &cs
	}

	recording := p >= c.opt.Warmup
	if !recording && c.fw == nil && c.opt.OnPeriod == nil {
		// Nobody consumes the snapshot during an unbalanced, unobserved
		// warm-up period; skip building it.
		r.rollSubEWMA()
		return nil
	}
	snap, err := c.eng.Snapshot()
	if err != nil {
		return err
	}
	dist, col, avg := snap.LoadDistance(), snap.CollocationFactor(), snap.AverageLoad()
	rep.HasSnapshot = true
	rep.LoadDistance, rep.Collocation, rep.AverageLoad = dist, col, avg
	if recording {
		if r.baseAvg == 0 && avg > 0 {
			r.baseAvg = avg
		}
		r.m.LoadDistance = append(r.m.LoadDistance, dist)
		r.m.Collocation = append(r.m.Collocation, col)
		idx := 0.0
		if r.baseAvg > 0 {
			idx = 100 * avg / r.baseAvg
		}
		r.m.LoadIndex = append(r.m.LoadIndex, idx)
		r.m.Migrations = append(r.m.Migrations, float64(ps.Migrations))
		r.cumLat += ps.MigrationLatency
		r.m.CumLatencyM = append(r.m.CumLatencyM, r.cumLat/60)
	}

	// Apply a completed asynchronous outcome only after the snapshot above,
	// so the recorded metrics describe the allocation the period actually
	// ran under; the snapshot handed to the planner is then patched to the
	// staged target so the planner never re-proposes the same moves.
	if r.planning {
		select {
		case pr := <-r.res:
			r.planning = false
			r.cancelPlan()
			if pr.err != nil {
				return fmt.Errorf("controller: period %d plan: %w", ps.Period, pr.err)
			}
			if err := r.applyOutcome(pr.out, &rep); err != nil {
				return err
			}
			rep.PlanLatency = pr.latency
			patchSnapshot(snap, pr.out)
		default:
			// Planner still busy on an older snapshot. Either drop this
			// period's snapshot (its loads survive in the EWMA), or — with
			// CancelStalePlans — abort the stale solve and hand over the
			// fresh snapshot below. The aborted solve's outcome is
			// discarded unconditionally: even if it completed between the
			// check above and the cancellation, its input is stale and its
			// plan must never be applied.
			if c.opt.CancelStalePlans {
				r.cancelPlan()
				<-r.res
				r.planning = false
				r.m.PlansCancelled++
			}
		}
	}

	if c.fw != nil {
		snap.MaxMigrations = c.opt.MaxMigrations
		snap.MaxMigrCost = c.opt.MaxMigrCost
		snap.Alpha = c.opt.Alpha
		r.smoothLoads(snap)
		if c.opt.Pipelined {
			if !r.planning {
				// Hand the freshest snapshot to the planner; it plans while
				// the next period's data flows.
				pctx, cancel := context.WithCancel(r.ctx)
				r.cancelPlan = cancel
				r.req <- planReq{ctx: pctx, snap: snap}
				r.planning = true
			}
		} else {
			t0 := time.Now()
			out, err := c.fw.Step(r.ctx, snap)
			if err != nil {
				return fmt.Errorf("controller: period %d plan: %w", ps.Period, err)
			}
			if err := r.applyOutcome(out, &rep); err != nil {
				return err
			}
			rep.PlanLatency = time.Since(t0)
		}
	}
	if c.opt.OnPeriod != nil {
		c.opt.OnPeriod(rep)
	}
	r.rollSubEWMA()
	return nil
}

// smoothLoads folds the snapshot's per-group loads into the EWMA the
// planner sees. The recorded metrics stay raw per-period measurements.
// When the sub-period feed already folded this period's boundary
// increments (Options.SubEWMA), only the tail interval past the last
// boundary is folded here, so the period's signal enters the EWMA exactly
// once — just in finer-grained, fresher steps.
func (r *run) smoothLoads(snap *core.Snapshot) {
	alpha := r.c.opt.SmoothAlpha
	if alpha >= 1 {
		return
	}
	if r.smooth == nil {
		r.smooth = make([]float64, len(snap.Groups))
		for k := range snap.Groups {
			r.smooth[k] = snap.Groups[k].Load
		}
		return
	}
	if r.subFolded {
		k1, alphaSub := r.subFoldFactor()
		for k := range snap.Groups {
			tail := snap.Groups[k].Load - r.subPrev[k]
			r.smooth[k] = alphaSub*(tail*k1) + (1-alphaSub)*r.smooth[k]
			snap.Groups[k].Load = r.smooth[k]
		}
		return
	}
	for k := range snap.Groups {
		r.smooth[k] = alpha*snap.Groups[k].Load + (1-alpha)*r.smooth[k]
		snap.Groups[k].Load = r.smooth[k]
	}
}

// subFoldFactor returns the sub-interval count estimate K (from the
// previous period, like the engine's own boundary calibration) and the
// per-boundary EWMA factor 1-(1-α)^(1/K), chosen so K boundary folds decay
// history exactly as one period-level fold at α would.
func (r *run) subFoldFactor() (float64, float64) {
	k := float64(r.lastSubCount + 1)
	return k, 1 - math.Pow(1-r.c.opt.SmoothAlpha, 1/k)
}

// foldSub folds one sub-interval boundary's load increment into the
// planner's EWMA (Options.SubEWMA). SubSnapshot loads are cumulative from
// the period start; the increment since the previous boundary, scaled by
// K, is a full-period-rate sample of the same signal the reactive trigger
// watches. Runs on the engine's generation goroutine — the engine
// guarantees it never overlaps the period-boundary observe hook.
func (r *run) foldSub(snap *core.Snapshot) {
	r.subCount++
	if r.subPrev == nil {
		r.subPrev = make([]float64, len(snap.Groups))
	}
	if r.lastSubCount == 0 || r.smooth == nil {
		// No K estimate yet (first period) or the EWMA is not seeded:
		// record the cumulative loads and let period-end smoothing handle
		// this period whole.
		for k := range snap.Groups {
			r.subPrev[k] = snap.Groups[k].Load
		}
		return
	}
	k1, alphaSub := r.subFoldFactor()
	for k := range snap.Groups {
		cum := snap.Groups[k].Load
		r.smooth[k] = alphaSub*((cum-r.subPrev[k])*k1) + (1-alphaSub)*r.smooth[k]
		r.subPrev[k] = cum
	}
	r.subFolded = true
}

// rollSubEWMA closes the period for the sub-period feed: the boundary
// count becomes the next period's K estimate and the cumulative trackers
// reset.
func (r *run) rollSubEWMA() {
	if !r.c.opt.SubEWMA {
		return
	}
	r.lastSubCount = r.subCount
	r.subCount = 0
	r.subFolded = false
	for k := range r.subPrev {
		r.subPrev[k] = 0
	}
}

// patchSnapshot folds an outcome just applied at this boundary into the
// snapshot about to be handed to the planner: the enlarged cluster, the
// fresh kill marks and the staged allocation target. Group loads stay the
// raw measurements.
func patchSnapshot(snap *core.Snapshot, out *core.Outcome) {
	for snap.NumNodes < out.NumNodes {
		if snap.Capacity != nil {
			snap.Capacity = append(snap.Capacity, 1)
		}
		if snap.Kill != nil {
			snap.Kill = append(snap.Kill, false)
		}
		snap.NumNodes++
	}
	if len(out.Scale.MarkForRemoval) > 0 && snap.Kill == nil {
		snap.Kill = make([]bool, snap.NumNodes)
	}
	for _, n := range out.Scale.MarkForRemoval {
		snap.Kill[n] = true
	}
	if out.Plan != nil {
		for k, n := range out.Plan.GroupNode {
			snap.Groups[k].Node = n
		}
	}
}

// applyOutcome installs one adaptation outcome: terminate drained
// kill-marked nodes (Algorithm 1 lines 1-3), provision requested nodes so
// the plan's node indices resolve, mark nodes for draining, and stage the
// allocation plan for the next period boundary.
func (r *run) applyOutcome(out *core.Outcome, rep *PeriodReport) error {
	for _, id := range out.Terminate {
		if r.terminated[id] {
			continue
		}
		// A node that re-acquired groups since the outcome's snapshot (or
		// whose drain migration is still pending) is skipped; the framework
		// re-lists it once it is truly empty.
		if err := r.c.eng.TerminateNode(id); err == nil {
			r.terminated[id] = true
			rep.Terminated = append(rep.Terminated, id)
		}
	}
	if out.Scale.AddNodes > 0 {
		we, _ := r.c.eng.(WeightedScaleEngine)
		if len(out.Scale.AddWeights) > 0 && we != nil {
			ids, err := we.AddNodesWeighted(out.Scale.AddWeights)
			if err != nil {
				return fmt.Errorf("controller: weighted scale-out: %w", err)
			}
			rep.Added = ids
		} else {
			rep.Added = r.c.eng.AddNodes(out.Scale.AddNodes)
		}
	}
	if len(out.Scale.MarkForRemoval) > 0 {
		r.c.eng.MarkForRemoval(out.Scale.MarkForRemoval)
	}
	if out.Plan != nil {
		if err := r.c.eng.ApplyPlan(out.Plan.GroupNode); err != nil {
			return fmt.Errorf("controller: apply plan: %w", err)
		}
	}
	r.m.PlansApplied++
	rep.Outcome = out
	return nil
}
