package controller

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
)

// skewTopology builds a single-operator counting job whose key distribution
// is uniform until hotPeriod and then abruptly concentrates ~45% of the
// stream on a handful of keys that all hash to groups hosted by node 0 —
// a sudden transient hotspot on one node.
func skewTopology(perPeriod, kgs, nodes, hotPeriod int) *engine.Topology {
	// Find hot keys: distinct key groups that the round-robin initial
	// allocation places on node 0.
	var hotKeys []string
	seen := map[int]bool{}
	for i := 0; len(hotKeys) < 3 && i < 100000; i++ {
		k := fmt.Sprintf("viral-%05d", i)
		kg := int(codec.Hash(k) % uint64(kgs))
		if kg%nodes == 0 && !seen[kg] {
			seen[kg] = true
			hotKeys = append(hotKeys, k)
		}
	}
	t := engine.NewTopology()
	t.AddSource("src", func(period int, emit engine.Emit) {
		for i := 0; i < perPeriod; i++ {
			k := fmt.Sprintf("key-%04d", (i*7919+period)%997)
			if period >= hotPeriod && i%9 < 4 {
				k = hotKeys[i%len(hotKeys)]
			}
			emit(&engine.Tuple{Key: k, TS: int64(period*perPeriod + i)})
		}
	})
	t.AddOperator(&engine.Operator{
		Name:      "count",
		KeyGroups: kgs,
		Proc: func(tu *engine.TupleView, st *engine.State, emit engine.Emit) {
			st.Add(tu.Key(), 1)
		},
	})
	t.Connect("src", "count")
	return t
}

// TestReactiveMovesHotGroupWithinSubPeriod is the load-skew regression test
// of the reactive tentpole: when transient skew appears inside period P,
// the reactive path must migrate load off the hot node within that same
// period (hot moves recorded in period P's stats), while the lockstep loop
// cannot react before the period P boundary — its first responding
// migrations execute a full period later, inside period P+1.
func TestReactiveMovesHotGroupWithinSubPeriod(t *testing.T) {
	const (
		perPeriod = 6000
		kgs       = 12
		nodes     = 3
		hotPeriod = 4 // 1-based engine period at which the skew appears
		periods   = 6
	)

	type result struct {
		hotMoves   map[int]int // period -> hot moves
		migrations map[int]int // period -> total migrations executed
		dist       map[int]float64
		m          *Metrics
	}
	run := func(reactive bool) result {
		topo := skewTopology(perPeriod, kgs, nodes, hotPeriod)
		cfg := engine.Config{Nodes: nodes}
		if reactive {
			cfg.SubPeriods = 4
		}
		e, err := engine.New(topo, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		res := result{hotMoves: map[int]int{}, migrations: map[int]int{}, dist: map[int]float64{}}
		ctrl := New(e, Options{
			Balancer:      &core.MILPBalancer{TimeLimit: 5 * time.Millisecond, Seed: 7},
			MaxMigrations: 4,
			Reactive:      reactive,
			HotMoveBudget: 2,
			SmoothAlpha:   1, // plan on raw loads: reactions are immediate
			OnPeriod: func(r PeriodReport) {
				res.hotMoves[r.Period] = r.Stats.HotMoves
				res.migrations[r.Period] = r.Stats.Migrations
				res.dist[r.Period] = r.LoadDistance
			},
		})
		m, err := ctrl.Run(context.Background(), periods)
		if err != nil {
			t.Fatal(err)
		}
		res.m = m
		return res
	}

	lockstep := run(false)
	reactive := run(true)

	if lockstep.m.HotMoves != 0 {
		t.Fatalf("lockstep run recorded %d hot moves", lockstep.m.HotMoves)
	}
	// The lockstep loop cannot react inside the skew period: the plan that
	// addresses the skew is computed at the hotPeriod boundary and its
	// migrations execute inside hotPeriod+1, where the measured imbalance
	// finally drops.
	if lockstep.dist[hotPeriod] < 10 {
		t.Fatalf("lockstep skew-period load distance %.2f too low — the scenario's hotspot did not materialize", lockstep.dist[hotPeriod])
	}
	if lockstep.dist[hotPeriod+1] >= lockstep.dist[hotPeriod] {
		t.Fatalf("lockstep never reacted: distance %.2f at period %d vs %.2f at %d",
			lockstep.dist[hotPeriod+1], hotPeriod+1, lockstep.dist[hotPeriod], hotPeriod)
	}

	// Reactive: hot moves executed inside the skew period itself...
	if got := reactive.hotMoves[hotPeriod]; got < 1 {
		t.Fatalf("reactive path executed %d hot moves inside the skew period, want >= 1 (it must react within a sub-period interval)", got)
	}
	if reactive.m.HotMoves < 1 {
		t.Fatalf("run metrics recorded %d hot moves", reactive.m.HotMoves)
	}
	// ...so load migrated off the hot node a full period earlier than
	// lockstep could: the skew period's measured imbalance comes out
	// clearly below the lockstep run's (same workload, same seeds).
	if reactive.dist[hotPeriod] >= 0.9*lockstep.dist[hotPeriod] {
		t.Fatalf("reactive skew-period load distance %.2f not clearly below lockstep %.2f",
			reactive.dist[hotPeriod], lockstep.dist[hotPeriod])
	}
	t.Logf("skew period %d: lockstep dist %.2f -> %.2f one period later (%d migrations); reactive dist %.2f within the period (%d hot moves)",
		hotPeriod, lockstep.dist[hotPeriod], lockstep.dist[hotPeriod+1],
		lockstep.migrations[hotPeriod+1], reactive.dist[hotPeriod], reactive.hotMoves[hotPeriod])
}

// stubbornBalancer models a paper-scale solver (tens of seconds of CPLEX
// time): Plan blocks until its context is cancelled, or — if left alone for
// `delay` — returns a poison plan that stacks every group on node 0. The
// cancellation machinery must abort it promptly and never apply the poison.
type stubbornBalancer struct {
	delay time.Duration

	mu        sync.Mutex
	cancelled int
	completed int
}

func (b *stubbornBalancer) Name() string { return "stubborn" }

func (b *stubbornBalancer) Plan(ctx context.Context, s *core.Snapshot) (*core.Plan, error) {
	timer := time.NewTimer(b.delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		b.mu.Lock()
		b.cancelled++
		b.mu.Unlock()
		return nil, ctx.Err()
	case <-timer.C:
		b.mu.Lock()
		b.completed++
		b.mu.Unlock()
		return core.PlanFromAssignment(s, make([]int, len(s.Groups)), nil), nil
	}
}

func (b *stubbornBalancer) counts() (cancelled, completed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cancelled, b.completed
}

// TestCancelStaleSolveNeverApplied is the cancellation regression test: in
// pipelined mode with CancelStalePlans, a deliberately slow context-aware
// balancer must be aborted promptly when a fresher snapshot arrives at the
// next period boundary, and its stale plan must never be applied. The whole
// run is wall-clock bounded far below the balancer's nominal solve time
// (modeled on the PR 2 pipelined regression test).
func TestCancelStaleSolveNeverApplied(t *testing.T) {
	const (
		periods = 8
		delay   = 30 * time.Second // nominal solve time; the test must not wait for it
	)
	topo := testTopology(800, 8, nil)
	e, err := engine.New(topo, engine.Config{Nodes: 2}, skewedInitial(topo))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bal := &stubbornBalancer{delay: delay}
	sawPoison := false
	ctrl := New(e, Options{
		Balancer:         bal,
		Pipelined:        true,
		CancelStalePlans: true,
		OnPeriod: func(r PeriodReport) {
			if r.Outcome != nil {
				sawPoison = true
			}
		},
	})
	t0 := time.Now()
	m, err := ctrl.Run(context.Background(), periods)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= delay/2 {
		t.Fatalf("run took %v; stale solves were not aborted promptly (balancer nominally needs %v each)", elapsed, delay)
	}
	cancelled, completed := bal.counts()
	if cancelled < periods/2 {
		t.Fatalf("only %d of ~%d solves were cancelled", cancelled, periods-1)
	}
	if completed != 0 {
		t.Fatalf("%d solves ran to completion despite cancellation", completed)
	}
	if m.PlansCancelled < periods/2 {
		t.Fatalf("metrics recorded %d cancelled plans, want >= %d", m.PlansCancelled, periods/2)
	}
	if m.PlansApplied != 0 || sawPoison {
		t.Fatalf("a stale plan was applied (applied=%d, sawPoison=%v)", m.PlansApplied, sawPoison)
	}
	// The poison allocation (everything on node 0) must never have been
	// installed: the engine still spreads groups over both nodes... unless
	// it started skewed — assert directly on the final target allocation
	// not matching a *freshly applied* poison plan is covered by
	// PlansApplied == 0 above; also sanity-check the engine survived.
	if _, err := e.Snapshot(); err != nil {
		t.Fatalf("engine unusable after run: %v", err)
	}
	t.Logf("%d periods in %v: %d solves cancelled, 0 applied", periods, elapsed, cancelled)
}

// TestTriggerFiresOnTransientSkewOnly: unit test of the trigger policy —
// balanced loads never fire; a sudden spike fires once and then respects
// the cooldown; a persistent plateau stops firing once the EWMA absorbs it.
func TestTriggerFiresOnTransientSkewOnly(t *testing.T) {
	tr := &Trigger{Ratio: 1.25, Deviation: 0.15, Alpha: 0.5, Cooldown: 2}
	balanced := []float64{10, 10.5, 9.5, 10}
	for i := 0; i < 5; i++ {
		if tr.Observe(balanced, nil) {
			t.Fatalf("trigger fired on balanced loads (round %d)", i)
		}
	}
	spike := []float64{30, 10.5, 9.5, 10}
	if !tr.Observe(spike, nil) {
		t.Fatal("trigger did not fire on a 3x spike")
	}
	// Cooldown: the next two boundaries stay quiet even though the skew
	// persists.
	if tr.Observe(spike, nil) || tr.Observe(spike, nil) {
		t.Fatal("trigger ignored its cooldown")
	}
	// After the cooldown the EWMA has absorbed most of the plateau; keep
	// observing until the deviation condition puts it to rest.
	fired := 0
	for i := 0; i < 10; i++ {
		if tr.Observe(spike, nil) {
			fired++
		}
	}
	if fired > 2 {
		t.Fatalf("trigger fired %d more times on a persistent plateau; the EWMA should absorb it", fired)
	}
	// Kill-marked nodes are ignored entirely.
	tr2 := &Trigger{}
	hotKilled := []float64{100, 10, 10, 10}
	kill := []bool{true, false, false, false}
	if tr2.Observe(hotKilled, kill) {
		t.Fatal("trigger fired on a draining node's load")
	}
}

// BenchmarkTrigger measures the per-boundary cost of the trigger policy
// (it runs on the data path's generation goroutine).
func BenchmarkTrigger(b *testing.B) {
	tr := &Trigger{}
	loads := make([]float64, 64)
	for i := range loads {
		loads[i] = 10 + float64(i%7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loads[i%64] = 10 + float64(i%13)
		tr.Observe(loads, nil)
	}
}
