// Package repro is a from-scratch Go reproduction of
//
//	Madsen, Zhou, Cao: "Integrative Dynamic Reconfiguration in a Parallel
//	Stream Processing Engine" (arXiv:1602.03770, ICDE 2017 line of work).
//
// It bundles a Storm-style parallel stream processing engine (operators
// parallelized over key groups with migratable state), the paper's
// integrative reconfiguration stack — the MILP key-group allocator, the
// ALBIC collocation-aware balancer (Algorithm 2) and the adaptation
// framework (Algorithm 1) — plus the comparison baselines (Flux, PoTC,
// COLA) and every substrate they need (a simplex/branch-and-bound MILP
// solver standing in for CPLEX and a multilevel graph partitioner standing
// in for METIS).
//
// Engine data path. The engine moves tuples through batch-oriented,
// lock-light machinery: every sender (worker node or the source-running
// engine goroutine) stages cross-node tuples in per-destination outboxes
// and ships one pooled, length-prefixed frame per (destination, operator)
// batch; mailboxes are unbounded MPSC queues whose producers append whole
// slices under one lock acquisition and whose consumer drains the entire
// backlog per wakeup. The correctness contract is the per-sender FIFO
// invariant: messages from one sender are delivered in send order — senders
// flush their outboxes before enqueuing a barrier, so a barrier can never
// overtake the data it covers, which is what the period/migration barrier
// protocol relies on (see internal/engine/mailbox.go and batch.go).
//
// Integrative state handling. Key-group state lives in internal/statestore:
// a versioned, per-group incremental store (full snapshot + delta chains)
// shared by checkpoint-based fault tolerance and state migration. The
// controller checkpoints on a cadence; a planned move of a checkpointed
// group pre-copies the checkpoint to the destination in the background —
// across multiple period boundaries for large states — and synchronously
// transfers only the delta accumulated since, which is also how the
// planners price such moves (mc_k = α·min(|σ_k|, |Δ_k|)).
//
// This file re-exports the public API from the internal packages; see
// examples/ for runnable programs and cmd/albic-bench for the experiment
// harness regenerating the paper's Figures 2-14.
package repro

import (
	"repro/internal/assign"
	"repro/internal/baseline"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/statestore"
	"repro/internal/workload"
)

// Streaming engine (internal/engine).
type (
	// Topology is a job: sources feeding a DAG of operators.
	Topology = engine.Topology
	// Operator is one vertex of the job DAG, parallelized over key groups.
	Operator = engine.Operator
	// Source generates a period's input batch.
	Source = engine.Source
	// SourceFunc is the generator signature.
	SourceFunc = engine.SourceFunc
	// PartSourceFunc is the partitionable generator signature: part `part`
	// of `parts` of one period's batch, run on parallel generator goroutines
	// when the engine is configured with EngineConfig.GenWorkers > 1
	// (register via Topology.AddSourceParts).
	PartSourceFunc = engine.PartSourceFunc
	// Tuple is the data unit ⟨key, value, ts⟩ — what sources and operators
	// construct and emit.
	Tuple = engine.Tuple
	// TupleView is the read-only, reusable window operators receive: on the
	// cross-node path it reads straight out of the pooled frame buffer
	// without materializing a Tuple. Valid only inside the Proc callback;
	// Materialize deep-copies for retention (see internal/engine/view.go
	// for the ownership rules).
	TupleView = engine.TupleView
	// State is the migratable computation state of one key group.
	State = engine.State
	// Emit sends a tuple downstream.
	Emit = engine.Emit
	// KeyBy extracts a custom partitioning key for an edge.
	KeyBy = engine.KeyBy
	// Engine executes a topology over worker-node goroutines.
	Engine = engine.Engine
	// EngineConfig tunes the engine's cost model.
	EngineConfig = engine.Config
	// PeriodStats is one period's merged statistics.
	PeriodStats = engine.PeriodStats
	// CheckpointStats describes one incremental checkpoint of all key-group
	// states (extension, see internal/engine/checkpoint.go).
	CheckpointStats = engine.CheckpointStats
	// StateStore is the versioned, per-group incremental state store that
	// checkpointing and checkpoint-assisted migration share (full base
	// snapshots plus delta chains; see internal/statestore).
	StateStore = statestore.Store
)

// Reconfiguration stack (internal/core).
type (
	// Snapshot is the controller's statistics view of one period.
	Snapshot = core.Snapshot
	// Plan is a target key-group allocation.
	Plan = core.Plan
	// Balancer computes plans from snapshots; Plan takes a context so the
	// controller can abort a solve whose input snapshot went stale.
	Balancer = core.Balancer
	// SimpleBalancer is the pre-context balancer shape (Flux, COLA, and
	// third-party balancers); lift it with AdaptBalancer.
	SimpleBalancer = core.SimpleBalancer
	// MILPBalancer solves the integrated load-balancing MILP each period.
	MILPBalancer = core.MILPBalancer
	// GreedyHotMover is the restricted planner behind reactive sub-period
	// moves: shed the hottest groups of the hottest node, nothing more.
	GreedyHotMover = core.GreedyHotMover
	// ALBIC is Algorithm 2: autonomic load balancing with integrated
	// collocation.
	ALBIC = core.ALBIC
	// Framework is Algorithm 1: the integrative adaptation framework.
	Framework = core.Framework
	// Scaler makes horizontal-scaling decisions.
	Scaler = core.Scaler
	// ScaleDecision is one period's scaling action.
	ScaleDecision = core.ScaleDecision
	// UtilizationScaler is the default utilization-band scaling policy.
	UtilizationScaler = core.UtilizationScaler
)

// Asynchronous control plane (internal/controller): the documented entry
// point for running a job under the integrative adaptation loop. The
// controller owns snapshotting, EWMA smoothing, calibration, the migration
// budget, planning and elasticity; in pipelined mode the planner overlaps
// the next period's data flow instead of stopping the data path. Reactive
// mode adds sub-period reconfiguration: the engine (built with
// EngineConfig.SubPeriods >= 2) reports mid-period statistics at
// sub-interval boundaries, a Trigger detects transient skew, and restricted
// hot moves apply without waiting for the period barrier.
type (
	// Controller drives one engine through the adaptation loop.
	Controller = controller.Controller
	// ControllerOptions configures the loop (balancer, scaler, budgets,
	// smoothing, pipelining, reactive triggers, observation hook).
	ControllerOptions = controller.Options
	// ControllerMetrics is the recorded per-period metric series of a run.
	ControllerMetrics = controller.Metrics
	// PeriodReport is the per-period view handed to OnPeriod observers.
	PeriodReport = controller.PeriodReport
	// ControllerEngine is the data-plane surface the controller drives
	// (implemented by *Engine).
	ControllerEngine = controller.Engine
	// Trigger is the reactive firing policy (imbalance ratio + EWMA
	// deviation thresholds, cooldown).
	Trigger = controller.Trigger
	// SubObserver is the engine's sub-period boundary hook.
	SubObserver = engine.SubObserver
)

// NewController builds the adaptation loop around an engine.
func NewController(e ControllerEngine, opt ControllerOptions) *Controller {
	return controller.New(e, opt)
}

// AdaptBalancer lifts a pre-context SimpleBalancer into the Balancer
// interface (the context is ignored).
func AdaptBalancer(b SimpleBalancer) Balancer { return core.AdaptBalancer(b) }

// Baselines (internal/baseline).
type (
	// Flux is the ICDE'03 pairwise-exchange balancer.
	Flux = baseline.Flux
	// COLA is the Middleware'09 graph-partitioning balancer.
	COLA = baseline.COLA
)

// Optimization problem layer (internal/assign).
type (
	// Problem is one invocation of the key-group allocation program.
	Problem = assign.Problem
	// ProblemItem is an indivisible migration unit.
	ProblemItem = assign.Item
	// Solution is a solved allocation.
	Solution = assign.Solution
	// SolveOptions configures the solver.
	SolveOptions = assign.Options
)

// Paper workloads (internal/workload).
type (
	// JobConfig sizes the paper's Real Jobs.
	JobConfig = workload.JobConfig
	// WikipediaConfig tunes the Wikipedia edit-history simulator.
	WikipediaConfig = workload.WikipediaConfig
	// AirlineConfig tunes the airline on-time simulator.
	AirlineConfig = workload.AirlineConfig
	// WeatherConfig tunes the GSOD weather simulator.
	WeatherConfig = workload.WeatherConfig
)

// NewTopology returns an empty topology builder.
func NewTopology() *Topology { return engine.NewTopology() }

// NewEngine builds an engine for a topology (initial may be nil for a
// round-robin allocation).
func NewEngine(t *Topology, cfg EngineConfig, initial []int) (*Engine, error) {
	return engine.New(t, cfg, initial)
}

// NewState returns an empty key-group state.
func NewState() *State { return engine.NewState() }

// NewTuple returns a pooled tuple with its key and timestamp set — the
// allocation-free way for sources (and Flush callbacks) to build output.
// Ownership transfers to the engine at emit; do not retain, mutate or
// re-emit afterwards. Inside a Proc callback prefer TupleView.NewTuple,
// which draws from the processing shard's local free list.
func NewTuple(key string, ts int64) *Tuple { return engine.NewTuple(key, ts) }

// Solve runs the anytime (or exact) solver on an allocation problem.
func Solve(p *Problem, opt SolveOptions) (*Solution, error) { return assign.Solve(p, opt) }

// RealJob1 is the paper's Wikipedia job (GeoHash → TopK → global TopK).
func RealJob1(cfg JobConfig) (*Topology, error) { return workload.RealJob1(cfg) }

// RealJob2 is the airline job with a perfect collocation available.
func RealJob2(cfg JobConfig) (*Topology, error) { return workload.RealJob2(cfg) }

// RealJob3 adds the route-keyed operator (halves obtainable collocation).
func RealJob3(cfg JobConfig) (*Topology, error) { return workload.RealJob3(cfg) }

// RealJob4 adds the weather/rainscore join pipeline.
func RealJob4(cfg JobConfig) (*Topology, error) { return workload.RealJob4(cfg) }

// WikipediaSource returns the Wikipedia edit-history simulator.
func WikipediaSource(cfg WikipediaConfig) SourceFunc { return workload.Wikipedia(cfg) }

// WikipediaPartsSource returns the partitionable Wikipedia simulator for
// parallel generation (EngineConfig.GenWorkers).
func WikipediaPartsSource(cfg WikipediaConfig) PartSourceFunc { return workload.WikipediaParts(cfg) }

// AirlineSource returns the airline on-time simulator.
func AirlineSource(cfg AirlineConfig) SourceFunc { return workload.Airline(cfg) }

// AirlinePartsSource returns the partitionable airline simulator.
func AirlinePartsSource(cfg AirlineConfig) PartSourceFunc { return workload.AirlineParts(cfg) }

// WeatherSource returns the GSOD weather simulator.
func WeatherSource(cfg WeatherConfig) SourceFunc { return workload.Weather(cfg) }

// WeatherPartsSource returns the partitionable GSOD weather simulator.
func WeatherPartsSource(cfg WeatherConfig) PartSourceFunc { return workload.WeatherParts(cfg) }
